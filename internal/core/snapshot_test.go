package core

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
)

// snapshotTable builds a table with segments, tombstones, AND live delta
// rows, so round-trip tests cover every storage region of the format.
func snapshotTable(t *testing.T) (*Program, *Table, [][]string) {
	t.Helper()
	L, R := makeTask(t, 53, 3)
	prog := tableTestProgram()
	tab, err := prog.NewTable(1, toRows(L[:120]), Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Remove([]int{2, 50, 119}); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Add(toRows(L[120:140])); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Compact(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Leave a live delta with a tombstone in it.
	if _, err := tab.Add(toRows(L[140:150])); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Remove([]int{tab.Len() - 5}); err != nil {
		t.Fatal(err)
	}
	return prog, tab, toRows(R)
}

// TestSnapshotRoundTrip: Save -> Load reproduces the table bit-identically
// — same rows, same answers as the original AND as the full-compile
// oracle — and keeps serving mutations afterwards.
func TestSnapshotRoundTrip(t *testing.T) {
	prog, tab, queries := snapshotTable(t)
	var buf bytes.Buffer
	if err := tab.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTable(buf.Bytes(), Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != tab.Len() || loaded.RowWidth() != tab.RowWidth() {
		t.Fatalf("loaded %d rows width %d, want %d width %d",
			loaded.Len(), loaded.RowWidth(), tab.Len(), tab.RowWidth())
	}
	if loaded.Generation() != 1 {
		t.Fatalf("loaded table starts at generation %d, want 1", loaded.Generation())
	}
	origRows, loadRows := tab.Rows(), loaded.Rows()
	for i := range origRows {
		for c := range origRows[i] {
			if origRows[i][c] != loadRows[i][c] {
				t.Fatalf("row %d cell %d differs after round trip", i, c)
			}
		}
	}
	want, err := tab.MatchRows(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.MatchRows(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("query %d differs after round trip: %+v vs %+v", i, got[i], want[i])
		}
	}
	expectOracle(t, prog, loaded, queries, "loaded snapshot")

	// The loaded table keeps full mutability.
	if _, err := loaded.Add(toRows([]string{"fresh row after load"})); err != nil {
		t.Fatal(err)
	}
	if _, err := loaded.Compact(context.Background()); err != nil {
		t.Fatal(err)
	}
	expectOracle(t, prog, loaded, queries, "loaded snapshot after churn")
}

// TestSnapshotSaveFile: the file form round-trips and replaces atomically.
func TestSnapshotSaveFile(t *testing.T) {
	_, tab, queries := snapshotTable(t)
	path := filepath.Join(t.TempDir(), "table.afjs")
	if err := tab.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
	loaded, err := LoadTableFile(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := tab.MatchRows(context.Background(), queries[:3])
	got, _ := loaded.MatchRows(context.Background(), queries[:3])
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("query %d differs via file round trip", i)
		}
	}
}

// TestSnapshotRejectsCorrupt: truncations, flipped bits, bad magic, and
// future versions all yield descriptive errors — never a panic, never a
// silently wrong table.
func TestSnapshotRejectsCorrupt(t *testing.T) {
	_, tab, _ := snapshotTable(t)
	var buf bytes.Buffer
	if err := tab.Save(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	if _, err := LoadTable(valid, Options{}); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}

	load := func(data []byte) error {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("LoadTable panicked: %v", r)
			}
		}()
		_, err := LoadTable(data, Options{})
		return err
	}

	// Truncations at every region boundary and a sweep of prefixes.
	for _, n := range []int{0, 3, 8, 9, 12, len(valid) / 4, len(valid) / 2, len(valid) - 1} {
		if err := load(valid[:n]); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}
	// Bad magic.
	bad := append([]byte(nil), valid...)
	bad[0] = 'X'
	if err := load(bad); err == nil {
		t.Error("bad magic accepted")
	}
	// Future version.
	bad = append([]byte(nil), valid...)
	bad[4] = snapshotVersion + 1
	if err := load(bad); err == nil {
		t.Error("future version accepted")
	}
	// Body corruption must trip the checksum, wherever it lands.
	for _, off := range []int{16, 64, len(valid)/2 + 3, len(valid) - 2} {
		bad = append([]byte(nil), valid...)
		bad[off] ^= 0x40
		if err := load(bad); err == nil {
			t.Errorf("flipped bit at %d accepted", off)
		}
	}
	// Trailing garbage changes the checksummed body, so it must fail too.
	if err := load(append(append([]byte(nil), valid...), 0, 1, 2)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

// FuzzLoadTable: the decoder must never panic, whatever bytes arrive. The
// corpus seeds a real snapshot plus adversarial prefixes so the fuzzer
// starts past the checksum and digs into the structured decoding.
func FuzzLoadTable(f *testing.F) {
	prog := tableTestProgram()
	tab, err := prog.NewTable(1, toRows([]string{
		"2008 lsu tigers football team",
		"2009 lsu tigers baseball team",
		"2008 wisconsin badgers football team",
	}), Options{})
	if err != nil {
		f.Fatal(err)
	}
	if _, err := tab.Add(toRows([]string{"2010 oregon ducks football team"})); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tab.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:9])
	f.Add([]byte("AFJS"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		tab, err := LoadTable(data, Options{})
		if err != nil {
			return
		}
		// The rare mutant that passes the checksum must still be a coherent,
		// queryable table.
		if _, _, err := tab.Match(context.Background(), "lsu tigers football"); err != nil {
			t.Fatalf("loaded table cannot serve: %v", err)
		}
	})
}
