package core

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/chu-data-lab/autofuzzyjoin-go/internal/config"
	"github.com/chu-data-lab/autofuzzyjoin-go/internal/parallel"
)

// unjoinableDist is the sentinel above which a candidate distance is
// treated as "no match possible" (e.g. the Contain-* hybrids emit exactly 1
// for non-contained pairs). Thresholds never reach this value, so such
// pairs can never join.
const unjoinableDist = 0.9995

// maxBallCount caps the 2θ-ball cardinality; precision estimates below
// 1/250 are all "hopeless" for any realistic τ, so the cap loses nothing.
const maxBallCount = 250

// engineInput abstracts the distance oracle so that the same greedy
// machinery (Algorithm 1) serves both single-column joins (profile-based
// distances) and multi-column joins (weighted per-column tensors).
type engineInput struct {
	space  []config.JoinFunction
	steps  int
	nL, nR int
	// lrCand[r] lists candidate left ids for right record r (post blocking
	// and negative-rule filtering); llCand[l] lists candidate left ids for
	// left record l (self excluded).
	lrCand [][]int32
	llCand [][]int32
	// lrDist returns the distance under function fi between right record r
	// and its ci-th candidate; llDist the distance between left record l
	// (ball center) and its ci-th candidate.
	lrDist func(fi, r, ci int) float64
	llDist func(fi, l, ci int) float64
	// selfJoin marks that right record r IS left record r (same table):
	// the 2θ-ball count around a join target must then exclude the query
	// record itself, which would otherwise poison every estimate with a
	// guaranteed extra ball member (its own duplicate candidate).
	selfJoin bool
	// ballFactor scales the estimation ball radius (2.0 per Eq. 8).
	ballFactor float64
}

// preparedFn is the pre-computation of Algorithm 1 lines 3–4 for one join
// function: per-right-record closest candidates, the threshold grid, and
// the 2θ-ball counts behind the precision estimate of Eq. (9).
type preparedFn struct {
	thresholds []float64 // grid of s candidate θ values
	bestL      []int32   // closest candidate per r, -1 if none
	bestD      []float64 // distance to bestL
	kMin       []int32   // first grid index at which r joins; steps if never
	// cnt[r][k] is the number of L records in the 2·θ_k ball around
	// bestL[r] (including the center), for k >= kMin[r]; nil when r can
	// never join under this function.
	cnt [][]uint8
	// totalP[k] = Σ_r joined at k of 1/cnt[r][k]; totalCnt[k] the count of
	// joined rows. These make per-iteration profit lookups O(1).
	totalP   []float64
	totalCnt []int
	// joinable lists r ids with kMin < steps, ascending by kMin.
	joinable []int32
}

// prepare runs the distance computation and precision pre-computation for
// every function in the space, fanning out across CPUs. Parallelism is
// two-level: up to parallelism workers each take whole functions (their
// pre-computations are independent), and any spare capacity — a space
// smaller than the worker budget, e.g. a single-function or reduced-space
// run, or a budget that does not divide evenly — is pushed down into each
// prepareFn as intra-function sharding over right records and ball
// centers (the first parallelism%outer workers carry the remainder).
// Functions with no joinable pair are nil. The output is bit-identical
// for every parallelism level.
func prepare(in *engineInput, parallelism int) []*preparedFn {
	fns := make([]*preparedFn, len(in.space))
	if len(in.space) == 0 {
		return fns
	}
	parallelism = parallel.Resolve(parallelism)
	outer := parallelism
	if outer > len(in.space) {
		outer = len(in.space)
	}
	if outer < 1 {
		outer = 1
	}
	inner, extra := parallelism/outer, parallelism%outer
	if outer <= 1 {
		for fi := range in.space {
			fns[fi] = prepareFn(in, fi, inner)
		}
		return fns
	}
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < outer; w++ {
		innerW := inner
		if w < extra {
			innerW++
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				fi := int(atomic.AddInt64(&next, 1))
				if fi >= len(in.space) {
					return
				}
				fns[fi] = prepareFn(in, fi, innerW)
			}
		}()
	}
	wg.Wait()
	return fns
}

// prepareFn pre-computes one function with up to workers goroutines for
// its distance loops. The expensive phases — the per-right-record closest-
// candidate scan and the L–L ball construction — shard across workers over
// disjoint index ranges; the cheap counting phase stays sequential so the
// floating-point accumulation order (ascending r) never changes.
func prepareFn(in *engineInput, fi, workers int) *preparedFn {
	s := in.steps
	fn := &preparedFn{
		bestL:    make([]int32, in.nR),
		bestD:    make([]float64, in.nR),
		kMin:     make([]int32, in.nR),
		cnt:      make([][]uint8, in.nR),
		totalP:   make([]float64, s),
		totalCnt: make([]int, s),
	}
	if workers < 1 {
		workers = 1
	}
	// Phase 1: closest candidate per right record. Rows are independent;
	// per-worker maxima merge exactly because max is order-free.
	caps := make([]float64, max(workers, 1))
	joins := make([]bool, max(workers, 1))
	parallel.Shard(in.nR, workers, func(w, start, end int) {
		for r := start; r < end; r++ {
			fn.bestL[r] = -1
			fn.bestD[r] = math.Inf(1)
			fn.kMin[r] = int32(s)
			for ci := range in.lrCand[r] {
				if d := in.lrDist(fi, r, ci); d < fn.bestD[r] {
					fn.bestD[r] = d
					fn.bestL[r] = in.lrCand[r][ci]
				}
			}
			if fn.bestL[r] >= 0 && fn.bestD[r] < unjoinableDist {
				joins[w] = true
				if fn.bestD[r] > caps[w] {
					caps[w] = fn.bestD[r]
				}
			}
		}
	})
	dCap := 0.0
	anyJoinable := false
	for w := range caps {
		anyJoinable = anyJoinable || joins[w]
		if caps[w] > dCap {
			dCap = caps[w]
		}
	}
	if !anyJoinable {
		return nil
	}
	fn.thresholds = make([]float64, s)
	for k := 0; k < s; k++ {
		fn.thresholds[k] = dCap * float64(k+1) / float64(s)
	}
	// Phase 2 (cheap, sequential): grid position of every joinable row and
	// the set of ball centers the estimates will need.
	needBall := make([]bool, in.nL)
	for r := 0; r < in.nR; r++ {
		d := fn.bestD[r]
		if fn.bestL[r] < 0 || d >= unjoinableDist {
			continue
		}
		var kMin int32
		if dCap > 0 {
			kMin = int32(math.Ceil(d*float64(s)/dCap)) - 1
			if kMin < 0 {
				kMin = 0
			}
			// Float round-off can land one step early; repair.
			for kMin < int32(s) && fn.thresholds[kMin] < d {
				kMin++
			}
		}
		if kMin >= int32(s) {
			continue
		}
		fn.kMin[r] = kMin
		needBall[fn.bestL[r]] = true
		fn.joinable = append(fn.joinable, int32(r))
	}
	if len(fn.joinable) == 0 {
		return nil
	}
	// Phase 3: sorted L–L ball distances for every needed center, sharded
	// across workers into one flat arena (no per-center allocation).
	centers := make([]int32, 0, len(fn.joinable))
	ballOf := make([]int32, in.nL)
	for l := range needBall {
		if needBall[l] {
			ballOf[l] = int32(len(centers))
			centers = append(centers, int32(l))
		}
	}
	ballOff := make([]int32, len(centers)+1)
	for i, l := range centers {
		ballOff[i+1] = ballOff[i] + int32(len(in.llCand[l]))
	}
	ballArena := make([]float64, ballOff[len(centers)])
	parallel.Shard(len(centers), workers, func(_, start, end int) {
		for i := start; i < end; i++ {
			l := centers[i]
			seg := ballArena[ballOff[i]:ballOff[i+1]]
			for ci := range seg {
				seg[ci] = in.llDist(fi, int(l), ci)
			}
			sort.Float64s(seg)
		}
	})
	// Phase 4 (sequential, ascending r): 2θ-ball counts and the totals
	// behind the O(1) profit lookups. One arena backs every row's counts.
	cntArena := make([]uint8, s*len(fn.joinable))
	factor := in.ballFactor
	if factor <= 0 {
		factor = 2
	}
	for ji, r32 := range fn.joinable {
		r := int(r32)
		kMin := fn.kMin[r]
		bc := ballOf[fn.bestL[r]]
		ball := ballArena[ballOff[bc]:ballOff[bc+1]]
		// In self-join mode the query record r is itself in the reference
		// table; since θ_k >= d it always falls inside the ball and must
		// be discounted when it is among l's blocked candidates.
		selfDiscount := 0
		if in.selfJoin {
			for _, id := range in.llCand[fn.bestL[r]] {
				if int(id) == r {
					selfDiscount = 1
					break
				}
			}
		}
		counts := cntArena[ji*s : (ji+1)*s : (ji+1)*s]
		bi := 0
		for k := int(kMin); k < s; k++ {
			radius := factor * fn.thresholds[k]
			for bi < len(ball) && ball[bi] <= radius {
				bi++
			}
			c := bi + 1 - selfDiscount // +1 for the center record itself
			if c < 1 {
				c = 1
			}
			if c > maxBallCount {
				c = maxBallCount
			}
			counts[k] = uint8(c)
			fn.totalP[k] += 1 / float64(c)
			fn.totalCnt[k]++
		}
		fn.cnt[r] = counts
	}
	sort.Slice(fn.joinable, func(a, b int) bool {
		return fn.kMin[fn.joinable[a]] < fn.kMin[fn.joinable[b]]
	})
	return fn
}

// engineOut is the raw outcome of the greedy search.
type engineOut struct {
	program      []Configuration
	assignedL    []int32
	assignedP    []float64
	assignedD    []float64
	assignedCfg  []int32
	assignedIter []int32
	tp, fp       float64
	trace        []IterationStat
}

// betterProfit reports whether profit tp1/fp1 beats tp2/fp2, breaking ties
// by larger TP. Cross-multiplication avoids dividing by zero FP.
func betterProfit(tp1, fp1, tp2, fp2 float64) bool {
	a := tp1 * fp2
	b := tp2 * fp1
	if a != b {
		return a > b
	}
	return tp1 > tp2
}

// greedy implements Algorithm 1 lines 5–15 over the prepared space.
func greedy(in *engineInput, fns []*preparedFn, opt Options) *engineOut {
	s := in.steps
	out := &engineOut{
		assignedL:    make([]int32, in.nR),
		assignedP:    make([]float64, in.nR),
		assignedD:    make([]float64, in.nR),
		assignedCfg:  make([]int32, in.nR),
		assignedIter: make([]int32, in.nR),
	}
	for r := range out.assignedL {
		out.assignedL[r] = -1
		out.assignedCfg[r] = -1
	}
	// assignedP/assignedCnt mirror preparedFn.totalP/totalCnt but only over
	// rows already assigned, so the marginal profit of a candidate config
	// is a pair of O(1) lookups.
	asgP := make([][]float64, len(fns))
	asgCnt := make([][]int, len(fns))
	for fi := range fns {
		if fns[fi] != nil {
			asgP[fi] = make([]float64, s)
			asgCnt[fi] = make([]int, s)
		}
	}
	// markAssigned removes row r's contribution from every function's
	// unassigned pool.
	markAssigned := func(r int) {
		for fi, fn := range fns {
			if fn == nil || fn.cnt[r] == nil {
				continue
			}
			for k := int(fn.kMin[r]); k < s; k++ {
				asgP[fi][k] += 1 / float64(fn.cnt[r][k])
				asgCnt[fi][k]++
			}
		}
	}

	if opt.SingleConfiguration {
		// AutoFJ-UC ablation: pick the single configuration with the
		// highest estimated recall whose estimated precision exceeds τ.
		bestFi, bestK, bestTP := -1, -1, 0.0
		for fi, fn := range fns {
			if fn == nil {
				continue
			}
			for k := 0; k < s; k++ {
				tp := fn.totalP[k]
				cnt := fn.totalCnt[k]
				if cnt == 0 {
					continue
				}
				if tp/float64(cnt) > opt.PrecisionTarget && tp > bestTP {
					bestFi, bestK, bestTP = fi, k, tp
				}
			}
		}
		if bestFi >= 0 {
			addConfig(in, fns[bestFi], bestFi, bestK, 1, out, markAssigned)
			out.trace = append(out.trace, IterationStat{
				Config:       out.program[0],
				EstPrecision: estPrecision(out.tp, out.fp),
				EstRecall:    out.tp,
				Joined:       countAssigned(out.assignedL),
			})
		}
		return out
	}

	for iter := 1; ; iter++ {
		if opt.MaxIterations > 0 && iter > opt.MaxIterations {
			break
		}
		bestFi, bestK := -1, -1
		bestTP, bestFP := 0.0, 0.0
		found := false
		for fi, fn := range fns {
			if fn == nil {
				continue
			}
			for k := 0; k < s; k++ {
				dCnt := fn.totalCnt[k] - asgCnt[fi][k]
				if dCnt == 0 {
					continue
				}
				dTP := fn.totalP[k] - asgP[fi][k]
				tp := out.tp + dTP
				fp := out.fp + (float64(dCnt) - dTP)
				if !found || betterProfit(tp, fp, bestTP, bestFP) {
					found = true
					bestFi, bestK, bestTP, bestFP = fi, k, tp, fp
				}
			}
		}
		if !found {
			break
		}
		if estPrecision(bestTP, bestFP) <= opt.PrecisionTarget {
			break
		}
		addConfig(in, fns[bestFi], bestFi, bestK, iter, out, markAssigned)
		out.trace = append(out.trace, IterationStat{
			Config:       out.program[len(out.program)-1],
			EstPrecision: estPrecision(out.tp, out.fp),
			EstRecall:    out.tp,
			Joined:       countAssigned(out.assignedL),
		})
	}
	return out
}

// addConfig appends configuration (fi, k) to the program and applies its
// joins, resolving conflicts toward the higher-precision assignment
// (§3.1, "Estimate for a set of configurations").
func addConfig(in *engineInput, fn *preparedFn, fi, k, iter int, out *engineOut, markAssigned func(int)) {
	cfgIdx := int32(len(out.program))
	out.program = append(out.program, Configuration{
		Function:  in.space[fi],
		Threshold: fn.thresholds[k],
	})
	for _, r32 := range fn.joinable {
		r := int(r32)
		if fn.kMin[r] > int32(k) {
			break // joinable is sorted by kMin
		}
		p := 1 / float64(fn.cnt[r][k])
		switch {
		case out.assignedL[r] < 0:
			out.assignedL[r] = fn.bestL[r]
			out.assignedP[r] = p
			out.assignedD[r] = fn.bestD[r]
			out.assignedCfg[r] = cfgIdx
			out.assignedIter[r] = int32(iter)
			out.tp += p
			out.fp += 1 - p
			markAssigned(r)
		case out.assignedL[r] == fn.bestL[r]:
			// Same join produced again: keep the more confident estimate.
			if p > out.assignedP[r] {
				out.tp += p - out.assignedP[r]
				out.fp -= p - out.assignedP[r]
				out.assignedP[r] = p
			}
		default:
			// Conflicting assignment: keep the more confident join.
			if p > out.assignedP[r] {
				out.tp += p - out.assignedP[r]
				out.fp -= p - out.assignedP[r]
				out.assignedP[r] = p
				out.assignedL[r] = fn.bestL[r]
				out.assignedD[r] = fn.bestD[r]
				out.assignedCfg[r] = cfgIdx
				out.assignedIter[r] = int32(iter)
			}
		}
	}
}

func estPrecision(tp, fp float64) float64 {
	if tp+fp == 0 {
		return 0
	}
	return tp / (tp + fp)
}

func countAssigned(assigned []int32) int {
	n := 0
	for _, a := range assigned {
		if a >= 0 {
			n++
		}
	}
	return n
}

// run executes prepare + greedy and packages the result.
func run(in *engineInput, opt Options) *Result {
	t0 := time.Now()
	fns := prepare(in, opt.Parallelism)
	t1 := time.Now()
	out := greedy(in, fns, opt)
	t2 := time.Now()
	res := &Result{
		Timing:       Timing{Precompute: t1.Sub(t0), Greedy: t2.Sub(t1)},
		Program:      out.program,
		EstPrecision: estPrecision(out.tp, out.fp),
		EstRecall:    out.tp,
		Trace:        out.trace,
	}
	for r := 0; r < in.nR; r++ {
		if out.assignedL[r] < 0 {
			continue
		}
		res.Joins = append(res.Joins, Join{
			Right:     r,
			Left:      int(out.assignedL[r]),
			Distance:  out.assignedD[r],
			Precision: out.assignedP[r],
			Config:    int(out.assignedCfg[r]),
			Iteration: int(out.assignedIter[r]),
		})
	}
	return res
}
