package core

import (
	"math"
	"sort"
	"time"

	"github.com/chu-data-lab/autofuzzyjoin-go/internal/config"
	"github.com/chu-data-lab/autofuzzyjoin-go/internal/parallel"
)

// unjoinableDist is the sentinel above which a candidate distance is
// treated as "no match possible" (e.g. the Contain-* hybrids emit exactly 1
// for non-contained pairs). Thresholds never reach this value, so such
// pairs can never join.
const unjoinableDist = 0.9995

// maxBallCount caps the 2θ-ball cardinality; precision estimates below
// 1/250 are all "hopeless" for any realistic τ, so the cap loses nothing.
const maxBallCount = 250

// engineInput abstracts the distance oracle so that the same greedy
// machinery (Algorithm 1) serves both single-column joins (profile-based
// distances) and multi-column joins (weighted per-column tensors).
type engineInput struct {
	space  []config.JoinFunction
	steps  int
	nL, nR int
	// lrCand[r] lists candidate left ids for right record r (post blocking
	// and negative-rule filtering); llCand[l] lists candidate left ids for
	// left record l (self excluded).
	lrCand [][]int32
	llCand [][]int32
	// newEval returns a fresh per-worker fused distance oracle. Pair-major
	// evaluation is the engine's whole performance story: one oracle call
	// scores a candidate pair under EVERY join function at once, sharing
	// the representation work (sorted-merges, rune conversions, dot
	// products) that a function-at-a-time loop would redo up to 140 times
	// per pair.
	newEval func() pairEval
	// selfJoin marks that right record r IS left record r (same table):
	// the 2θ-ball count around a join target must then exclude the query
	// record itself, which would otherwise poison every estimate with a
	// guaranteed extra ball member (its own duplicate candidate).
	selfJoin bool
	// ballFactor scales the estimation ball radius (2.0 per Eq. 8).
	ballFactor float64
}

// pairEval is a per-worker fused distance oracle: lr fills out[fi] with
// the distance under join function fi between right record r and its
// ci-th blocked candidate; ll does the same between left record l (a
// ball center) and its ci-th L-L candidate. out has len(space) entries.
// Implementations may carry scratch, so oracles must not be shared
// across goroutines — every worker gets its own from engineInput.newEval.
type pairEval struct {
	lr func(r, ci int, out []float64)
	ll func(l, ci int, out []float64)
}

// preparedFn is the pre-computation of Algorithm 1 lines 3–4 for one join
// function: per-right-record closest candidates, the threshold grid, and
// the 2θ-ball counts behind the precision estimate of Eq. (9).
type preparedFn struct {
	thresholds []float64 // grid of s candidate θ values
	bestL      []int32   // closest candidate per r, -1 if none
	bestD      []float64 // distance to bestL
	kMin       []int32   // first grid index at which r joins; steps if never
	// cnt[r][k] is the number of L records in the 2·θ_k ball around
	// bestL[r] (including the center), for k >= kMin[r]; nil when r can
	// never join under this function.
	cnt [][]uint8
	// totalP[k] = Σ_r joined at k of 1/cnt[r][k]; totalCnt[k] the count of
	// joined rows. These make per-iteration profit lookups O(1).
	totalP   []float64
	totalCnt []int
	// joinable lists r ids with kMin < steps, ascending by kMin.
	joinable []int32
}

// ballPlan is the per-function bookkeeping that connects the pair-major
// center pass (phase 3) back to the function's joinable rows: which ball
// centers the function needs, and which joinable rows (by index into
// preparedFn.joinable) hang off each center.
type ballPlan struct {
	centers []int32 // ascending left ids needing a ball under this fn
	rowOff  []int32 // group offsets into rows, len(centers)+1
	rows    []int32 // joinable indexes grouped by center, ascending inside a group
	arena   []uint8 // backing storage for preparedFn.cnt, steps per row
}

// centerIndex locates l in the ascending centers list.
func centerIndex(centers []int32, l int32) int32 {
	lo, hi := 0, len(centers)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if centers[mid] < l {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return int32(lo)
}

// fnCenter addresses one (function, center) pair of the phase-3 pass.
type fnCenter struct {
	fi int32 // function index
	ci int32 // index into that function's ballPlan.centers
}

// prepare runs the distance computation and precision pre-computation for
// every function in the space, fanning out across CPUs. Evaluation is
// PAIR-MAJOR: each candidate pair is scored once under all functions by a
// fused pairEval oracle, instead of once per function — for the full
// 140-function space that collapses ~16 sparse-vector merges and 4
// processed-string rune conversions per pair that the function-major
// loop recomputed per function. Four phases:
//
//  1. sharded over right records: one fused evaluation per L-R candidate
//     pair updates every function's closest-candidate scan at once;
//  2. sharded over functions: threshold grids, grid positions, joinable
//     rows, and the per-function ball-center grouping;
//  3. sharded over the UNION of ball centers: one fused evaluation per
//     L-L candidate pair feeds the sorted ball of every function that
//     needs that center, then the 2θ-ball counts of its joinable rows;
//  4. sharded over functions: the totalP/totalCnt profit accumulators,
//     summed sequentially in ascending right-record order so the
//     floating-point accumulation order never depends on scheduling.
//
// Functions with no joinable pair are nil. The output is bit-identical
// for every parallelism level, and bit-identical to the function-major
// reference implementation (see prepare_baseline_test.go).
func prepare(in *engineInput, parallelism int) []*preparedFn {
	numFn := len(in.space)
	fns := make([]*preparedFn, numFn)
	if numFn == 0 {
		return fns
	}
	workers := parallel.Resolve(parallelism)
	s := in.steps
	for fi := range fns {
		fns[fi] = &preparedFn{
			bestL:    make([]int32, in.nR),
			bestD:    make([]float64, in.nR),
			kMin:     make([]int32, in.nR),
			cnt:      make([][]uint8, in.nR),
			totalP:   make([]float64, s),
			totalCnt: make([]int, s),
		}
	}

	// Phase 1 (pair-major, sharded over right records): closest candidate
	// per (function, right record). Rows are independent; within a row,
	// candidates are scanned in blocking order with a strict <, so the
	// first minimum wins exactly as in a function-major scan.
	parallel.Shard(in.nR, workers, func(_, start, end int) {
		ev := in.newEval()
		d := make([]float64, numFn)
		for r := start; r < end; r++ {
			for _, fn := range fns {
				fn.bestL[r] = -1
				fn.bestD[r] = math.Inf(1)
				fn.kMin[r] = int32(s)
			}
			cands := in.lrCand[r]
			for ci := range cands {
				ev.lr(r, ci, d)
				l := cands[ci]
				for fi, fn := range fns {
					if d[fi] < fn.bestD[r] {
						fn.bestD[r] = d[fi]
						fn.bestL[r] = l
					}
				}
			}
		}
	})

	// Phase 2 (sharded over functions): threshold grid, grid position of
	// every joinable row, and the ball centers grouped for phase 3.
	plans := make([]*ballPlan, numFn)
	parallel.Shard(numFn, workers, func(_, start, end int) {
		for fi := start; fi < end; fi++ {
			fn := fns[fi]
			dCap := 0.0
			anyJoinable := false
			for r := 0; r < in.nR; r++ {
				if fn.bestL[r] >= 0 && fn.bestD[r] < unjoinableDist {
					anyJoinable = true
					if fn.bestD[r] > dCap {
						dCap = fn.bestD[r]
					}
				}
			}
			if !anyJoinable {
				fns[fi] = nil
				continue
			}
			fn.thresholds = make([]float64, s)
			for k := 0; k < s; k++ {
				fn.thresholds[k] = dCap * float64(k+1) / float64(s)
			}
			needBall := make([]bool, in.nL)
			nCenters := 0
			for r := 0; r < in.nR; r++ {
				d := fn.bestD[r]
				if fn.bestL[r] < 0 || d >= unjoinableDist {
					continue
				}
				var kMin int32
				if dCap > 0 {
					kMin = int32(math.Ceil(d*float64(s)/dCap)) - 1
					if kMin < 0 {
						kMin = 0
					}
					// Float round-off can land one step early; repair.
					for kMin < int32(s) && fn.thresholds[kMin] < d {
						kMin++
					}
				}
				if kMin >= int32(s) {
					continue
				}
				fn.kMin[r] = kMin
				if !needBall[fn.bestL[r]] {
					needBall[fn.bestL[r]] = true
					nCenters++
				}
				fn.joinable = append(fn.joinable, int32(r))
			}
			if len(fn.joinable) == 0 {
				fns[fi] = nil
				continue
			}
			// Group joinable rows by their ball center so phase 3 can
			// consume a center's sorted ball for all its rows at once.
			plan := &ballPlan{
				centers: make([]int32, 0, nCenters),
				arena:   make([]uint8, s*len(fn.joinable)),
			}
			for l, need := range needBall {
				if need {
					plan.centers = append(plan.centers, int32(l))
				}
			}
			plan.rowOff = make([]int32, len(plan.centers)+1)
			for _, r32 := range fn.joinable {
				plan.rowOff[centerIndex(plan.centers, fn.bestL[r32])+1]++
			}
			for i := 0; i < len(plan.centers); i++ {
				plan.rowOff[i+1] += plan.rowOff[i]
			}
			plan.rows = make([]int32, len(fn.joinable))
			fill := make([]int32, len(plan.centers))
			for ji, r32 := range fn.joinable {
				c := centerIndex(plan.centers, fn.bestL[r32])
				plan.rows[plan.rowOff[c]+fill[c]] = int32(ji)
				fill[c]++
			}
			plans[fi] = plan
		}
	})

	// Union of ball centers across functions plus, per center, the list
	// of functions that need it (built sequentially: it is a cheap index
	// pass, and shared append targets must not race).
	gIdx := make([]int32, in.nL)
	for i := range gIdx {
		gIdx[i] = -1
	}
	var centers []int32
	for fi := range fns {
		if fns[fi] == nil {
			continue
		}
		for _, l := range plans[fi].centers {
			if gIdx[l] < 0 {
				gIdx[l] = int32(len(centers))
				centers = append(centers, l)
			}
		}
	}
	perCenter := make([][]fnCenter, len(centers))
	for fi := range fns {
		if fns[fi] == nil {
			continue
		}
		for ci, l := range plans[fi].centers {
			gi := gIdx[l]
			perCenter[gi] = append(perCenter[gi], fnCenter{fi: int32(fi), ci: int32(ci)})
		}
	}

	// Phase 3 (pair-major, sharded over the center union): every L-L
	// candidate pair of a center is evaluated ONCE under all functions;
	// each function needing the center then sorts its slice of the
	// per-center distance matrix and counts the 2θ-balls of its rows.
	// Writes are disjoint — every (function, joinable row) belongs to
	// exactly one center — so scheduling cannot change the output.
	factor := in.ballFactor
	if factor <= 0 {
		factor = 2
	}
	parallel.Shard(len(centers), workers, func(_, start, end int) {
		ev := in.newEval()
		row := make([]float64, numFn)
		var mat []float64  // per-center [numFn][nCand] distances
		var ball []float64 // one function's sorted ball
		for gi := start; gi < end; gi++ {
			l := int(centers[gi])
			nCand := len(in.llCand[l])
			if cap(mat) < numFn*nCand {
				mat = make([]float64, numFn*nCand)
			}
			mat = mat[:numFn*nCand]
			for ci := 0; ci < nCand; ci++ {
				ev.ll(l, ci, row)
				for fi := 0; fi < numFn; fi++ {
					mat[fi*nCand+ci] = row[fi]
				}
			}
			for _, fc := range perCenter[gi] {
				fn, plan := fns[fc.fi], plans[fc.fi]
				ball = append(ball[:0], mat[int(fc.fi)*nCand:(int(fc.fi)+1)*nCand]...)
				sort.Float64s(ball)
				for _, ji := range plan.rows[plan.rowOff[fc.ci]:plan.rowOff[fc.ci+1]] {
					countBall(in, fn, plan.arena, int(ji), ball, factor)
				}
			}
		}
	})

	// Phase 4 (sharded over functions): profit accumulators. The float
	// additions run sequentially in ascending right-record order per
	// function — the same order at every parallelism level.
	parallel.Shard(numFn, workers, func(_, start, end int) {
		for fi := start; fi < end; fi++ {
			fn := fns[fi]
			if fn == nil {
				continue
			}
			for _, r32 := range fn.joinable {
				r := int(r32)
				counts := fn.cnt[r]
				for k := int(fn.kMin[r]); k < s; k++ {
					fn.totalP[k] += 1 / float64(counts[k])
					fn.totalCnt[k]++
				}
			}
			sort.Slice(fn.joinable, func(a, b int) bool {
				return fn.kMin[fn.joinable[a]] < fn.kMin[fn.joinable[b]]
			})
		}
	})
	return fns
}

// countBall fills one joinable row's 2θ-ball counts from its center's
// sorted ball distances (phase 3 of prepare).
func countBall(in *engineInput, fn *preparedFn, arena []uint8, ji int, ball []float64, factor float64) {
	s := in.steps
	r := int(fn.joinable[ji])
	kMin := fn.kMin[r]
	// In self-join mode the query record r is itself in the reference
	// table; since θ_k >= d it always falls inside the ball and must
	// be discounted when it is among l's blocked candidates.
	selfDiscount := 0
	if in.selfJoin {
		for _, id := range in.llCand[fn.bestL[r]] {
			if int(id) == r {
				selfDiscount = 1
				break
			}
		}
	}
	counts := arena[ji*s : (ji+1)*s : (ji+1)*s]
	bi := 0
	for k := int(kMin); k < s; k++ {
		radius := factor * fn.thresholds[k]
		for bi < len(ball) && ball[bi] <= radius {
			bi++
		}
		c := bi + 1 - selfDiscount // +1 for the center record itself
		if c < 1 {
			c = 1
		}
		if c > maxBallCount {
			c = maxBallCount
		}
		counts[k] = uint8(c)
	}
	fn.cnt[r] = counts
}

// engineOut is the raw outcome of the greedy search.
type engineOut struct {
	program      []Configuration
	assignedL    []int32
	assignedP    []float64
	assignedD    []float64
	assignedCfg  []int32
	assignedIter []int32
	tp, fp       float64
	trace        []IterationStat
}

// betterProfit reports whether profit tp1/fp1 beats tp2/fp2, breaking ties
// by larger TP. Cross-multiplication avoids dividing by zero FP.
func betterProfit(tp1, fp1, tp2, fp2 float64) bool {
	a := tp1 * fp2
	b := tp2 * fp1
	if a != b {
		return a > b
	}
	return tp1 > tp2
}

// greedy implements Algorithm 1 lines 5–15 over the prepared space.
func greedy(in *engineInput, fns []*preparedFn, opt Options) *engineOut {
	s := in.steps
	out := &engineOut{
		assignedL:    make([]int32, in.nR),
		assignedP:    make([]float64, in.nR),
		assignedD:    make([]float64, in.nR),
		assignedCfg:  make([]int32, in.nR),
		assignedIter: make([]int32, in.nR),
	}
	for r := range out.assignedL {
		out.assignedL[r] = -1
		out.assignedCfg[r] = -1
	}
	// assignedP/assignedCnt mirror preparedFn.totalP/totalCnt but only over
	// rows already assigned, so the marginal profit of a candidate config
	// is a pair of O(1) lookups.
	asgP := make([][]float64, len(fns))
	asgCnt := make([][]int, len(fns))
	for fi := range fns {
		if fns[fi] != nil {
			asgP[fi] = make([]float64, s)
			asgCnt[fi] = make([]int, s)
		}
	}
	// markAssigned removes row r's contribution from every function's
	// unassigned pool.
	markAssigned := func(r int) {
		for fi, fn := range fns {
			if fn == nil || fn.cnt[r] == nil {
				continue
			}
			for k := int(fn.kMin[r]); k < s; k++ {
				asgP[fi][k] += 1 / float64(fn.cnt[r][k])
				asgCnt[fi][k]++
			}
		}
	}

	if opt.SingleConfiguration {
		// AutoFJ-UC ablation: pick the single configuration with the
		// highest estimated recall whose estimated precision exceeds τ.
		bestFi, bestK, bestTP := -1, -1, 0.0
		for fi, fn := range fns {
			if fn == nil {
				continue
			}
			for k := 0; k < s; k++ {
				tp := fn.totalP[k]
				cnt := fn.totalCnt[k]
				if cnt == 0 {
					continue
				}
				if tp/float64(cnt) > opt.PrecisionTarget && tp > bestTP {
					bestFi, bestK, bestTP = fi, k, tp
				}
			}
		}
		if bestFi >= 0 {
			addConfig(in, fns[bestFi], bestFi, bestK, 1, out, markAssigned)
			out.trace = append(out.trace, IterationStat{
				Config:       out.program[0],
				EstPrecision: estPrecision(out.tp, out.fp),
				EstRecall:    out.tp,
				Joined:       countAssigned(out.assignedL),
			})
		}
		return out
	}

	for iter := 1; ; iter++ {
		if opt.MaxIterations > 0 && iter > opt.MaxIterations {
			break
		}
		bestFi, bestK := -1, -1
		bestTP, bestFP := 0.0, 0.0
		found := false
		for fi, fn := range fns {
			if fn == nil {
				continue
			}
			for k := 0; k < s; k++ {
				dCnt := fn.totalCnt[k] - asgCnt[fi][k]
				if dCnt == 0 {
					continue
				}
				dTP := fn.totalP[k] - asgP[fi][k]
				tp := out.tp + dTP
				fp := out.fp + (float64(dCnt) - dTP)
				if !found || betterProfit(tp, fp, bestTP, bestFP) {
					found = true
					bestFi, bestK, bestTP, bestFP = fi, k, tp, fp
				}
			}
		}
		if !found {
			break
		}
		if estPrecision(bestTP, bestFP) <= opt.PrecisionTarget {
			break
		}
		addConfig(in, fns[bestFi], bestFi, bestK, iter, out, markAssigned)
		out.trace = append(out.trace, IterationStat{
			Config:       out.program[len(out.program)-1],
			EstPrecision: estPrecision(out.tp, out.fp),
			EstRecall:    out.tp,
			Joined:       countAssigned(out.assignedL),
		})
	}
	return out
}

// addConfig appends configuration (fi, k) to the program and applies its
// joins, resolving conflicts toward the higher-precision assignment
// (§3.1, "Estimate for a set of configurations").
func addConfig(in *engineInput, fn *preparedFn, fi, k, iter int, out *engineOut, markAssigned func(int)) {
	cfgIdx := int32(len(out.program))
	out.program = append(out.program, Configuration{
		Function:  in.space[fi],
		Threshold: fn.thresholds[k],
	})
	for _, r32 := range fn.joinable {
		r := int(r32)
		if fn.kMin[r] > int32(k) {
			break // joinable is sorted by kMin
		}
		p := 1 / float64(fn.cnt[r][k])
		switch {
		case out.assignedL[r] < 0:
			out.assignedL[r] = fn.bestL[r]
			out.assignedP[r] = p
			out.assignedD[r] = fn.bestD[r]
			out.assignedCfg[r] = cfgIdx
			out.assignedIter[r] = int32(iter)
			out.tp += p
			out.fp += 1 - p
			markAssigned(r)
		case out.assignedL[r] == fn.bestL[r]:
			// Same join produced again: keep the more confident estimate.
			if p > out.assignedP[r] {
				out.tp += p - out.assignedP[r]
				out.fp -= p - out.assignedP[r]
				out.assignedP[r] = p
			}
		default:
			// Conflicting assignment: keep the more confident join.
			if p > out.assignedP[r] {
				out.tp += p - out.assignedP[r]
				out.fp -= p - out.assignedP[r]
				out.assignedP[r] = p
				out.assignedL[r] = fn.bestL[r]
				out.assignedD[r] = fn.bestD[r]
				out.assignedCfg[r] = cfgIdx
				out.assignedIter[r] = int32(iter)
			}
		}
	}
}

func estPrecision(tp, fp float64) float64 {
	if tp+fp == 0 {
		return 0
	}
	return tp / (tp + fp)
}

func countAssigned(assigned []int32) int {
	n := 0
	for _, a := range assigned {
		if a >= 0 {
			n++
		}
	}
	return n
}

// run executes prepare + greedy and packages the result.
func run(in *engineInput, opt Options) *Result {
	t0 := time.Now()
	fns := prepare(in, opt.Parallelism)
	t1 := time.Now()
	out := greedy(in, fns, opt)
	t2 := time.Now()
	res := &Result{
		Timing:       Timing{Precompute: t1.Sub(t0), Greedy: t2.Sub(t1)},
		Program:      out.program,
		EstPrecision: estPrecision(out.tp, out.fp),
		EstRecall:    out.tp,
		Trace:        out.trace,
	}
	for r := 0; r < in.nR; r++ {
		if out.assignedL[r] < 0 {
			continue
		}
		res.Joins = append(res.Joins, Join{
			Right:     r,
			Left:      int(out.assignedL[r]),
			Distance:  out.assignedD[r],
			Precision: out.assignedP[r],
			Config:    int(out.assignedCfg[r]),
			Iteration: int(out.assignedIter[r]),
		})
	}
	return res
}
