package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/chu-data-lab/autofuzzyjoin-go/internal/blocking"
	"github.com/chu-data-lab/autofuzzyjoin-go/internal/config"
)

// prepareTables builds synthetic reference/query tables with typos,
// token drops, and prefixes so that every kernel family sees non-trivial
// pairs.
func prepareTables(nL, nR int, seed int64) (left, right []string) {
	rng := rand.New(rand.NewSource(seed))
	adjectives := []string{"north", "south", "east", "west", "central", "upper", "lower", "old", "new", "grand"}
	nouns := []string{"museum", "institute", "library", "archive", "gallery", "college", "theatre", "garden", "bridge", "station"}
	for i := 0; i < nL; i++ {
		left = append(left, fmt.Sprintf("%s %s of %s %d",
			adjectives[rng.Intn(len(adjectives))], nouns[rng.Intn(len(nouns))],
			adjectives[rng.Intn(len(adjectives))], 1900+rng.Intn(120)))
	}
	for i := 0; i < nR; i++ {
		base := left[rng.Intn(len(left))]
		switch rng.Intn(4) {
		case 0: // typo: swap two characters
			b := []byte(base)
			p := rng.Intn(len(b) - 1)
			b[p], b[p+1] = b[p+1], b[p]
			right = append(right, string(b))
		case 1: // drop the last token
			right = append(right, base[:len(base)-5])
		case 2: // add a prefix
			right = append(right, "the "+base)
		default:
			right = append(right, base)
		}
	}
	return left, right
}

// buildPrepareInput assembles the engine input for a table pair via the
// real blocking pipeline, plus the one-function-at-a-time callbacks the
// function-major baseline scores through.
func buildPrepareInput(left, right []string, space []config.JoinFunction, steps int, selfJoin bool) (*engineInput, func(fi, r, ci int) float64, func(fi, l, ci int) float64) {
	var lrCand, llCand [][]int32
	if selfJoin {
		blk := blocking.BlockSelf(left, 1.0, 0)
		llCand = make([][]int32, len(left))
		for i, cs := range blk.LL {
			ids := make([]int32, len(cs))
			for ci, c := range cs {
				ids[ci] = c.ID
			}
			llCand[i] = ids
		}
		lrCand = llCand
		right = left
	} else {
		blk := blocking.Block(left, right, 1.0, 0)
		llCand = make([][]int32, len(left))
		for i, cs := range blk.LL {
			ids := make([]int32, len(cs))
			for ci, c := range cs {
				ids[ci] = c.ID
			}
			llCand[i] = ids
		}
		lrCand = make([][]int32, len(right))
		for j, cs := range blk.LR {
			ids := make([]int32, len(cs))
			for ci, c := range cs {
				ids[ci] = c.ID
			}
			lrCand[j] = ids
		}
	}
	corpus := config.NewCorpus(space, left, right)
	profL := corpus.Profiles(left, 0)
	profR := corpus.Profiles(right, 0)
	if selfJoin {
		profR = profL
	}
	ev := config.NewEvaluator(space)
	in := &engineInput{
		space:    space,
		steps:    steps,
		nL:       len(left),
		nR:       len(right),
		lrCand:   lrCand,
		llCand:   llCand,
		selfJoin: selfJoin,
		newEval: func() pairEval {
			sc := ev.NewScratch()
			return pairEval{
				lr: func(r, ci int, out []float64) {
					ev.Distances(profL[lrCand[r][ci]], profR[r], sc, out)
				},
				ll: func(l, ci int, out []float64) {
					ev.Distances(profL[l], profL[llCand[l][ci]], sc, out)
				},
			}
		},
	}
	lrDist := func(fi, r, ci int) float64 {
		return space[fi].Distance(profL[lrCand[r][ci]], profR[r])
	}
	llDist := func(fi, l, ci int) float64 {
		return space[fi].Distance(profL[l], profL[llCand[l][ci]])
	}
	return in, lrDist, llDist
}

// TestPreparePairMajorMatchesFunctionMajor: the pair-major fused prepare
// must be bit-identical to the function-major reference — bestL/bestD,
// threshold grids, ball counts, profit totals, and joinable ordering —
// for every function of the full space, at every parallelism level, in
// both join and self-join modes.
func TestPreparePairMajorMatchesFunctionMajor(t *testing.T) {
	left, right := prepareTables(80, 60, 3)
	for _, mode := range []struct {
		name     string
		selfJoin bool
		space    []config.JoinFunction
	}{
		{"join/full140", false, config.Space()},
		{"join/extended148", false, config.ExtendedSpace()},
		{"selfjoin/reduced24", true, config.ReducedSpace()},
	} {
		t.Run(mode.name, func(t *testing.T) {
			in, lrDist, llDist := buildPrepareInput(left, right, mode.space, 20, mode.selfJoin)
			want := functionMajorPrepare(in, lrDist, llDist, 1)
			for _, p := range []int{1, 4, 8} {
				got := prepare(in, p)
				if len(got) != len(want) {
					t.Fatalf("p=%d: %d fns, want %d", p, len(got), len(want))
				}
				for fi := range want {
					if !reflect.DeepEqual(got[fi], want[fi]) {
						t.Fatalf("p=%d: fn %d (%s) differs:\npair-major %+v\nfn-major   %+v",
							p, fi, mode.space[fi].Name(), got[fi], want[fi])
					}
				}
			}
		})
	}
}

// benchPrepareInput is shared by the BenchmarkPrepare* pair so fused and
// function-major runs see the identical workload.
func benchPrepareInput(b *testing.B) (*engineInput, func(fi, r, ci int) float64, func(fi, l, ci int) float64) {
	b.Helper()
	left, right := prepareTables(400, 300, 11)
	return buildPrepareInput(left, right, config.Space(), DefaultThresholdSteps, false)
}

// BenchmarkPrepareFused measures the pair-major fused-kernel prepare on
// the full 140-function space.
func BenchmarkPrepareFused(b *testing.B) {
	in, _, _ := benchPrepareInput(b)
	for _, p := range []int{1, 4} {
		b.Run(fmt.Sprintf("full140/p%d", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				prepare(in, p)
			}
		})
	}
}

// BenchmarkPrepareFunctionMajor measures the pre-refactor function-major
// baseline on the identical workload; the fused/function-major ratio at
// equal parallelism is the learn-phase speedup tracked in
// BENCH_learn.json.
func BenchmarkPrepareFunctionMajor(b *testing.B) {
	in, lrDist, llDist := benchPrepareInput(b)
	for _, p := range []int{1, 4} {
		b.Run(fmt.Sprintf("full140/p%d", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				functionMajorPrepare(in, lrDist, llDist, p)
			}
		})
	}
}
