package core

import (
	"math/rand"
	"testing"
)

func TestProgramRoundTrip(t *testing.T) {
	L := makeReference()
	rng := rand.New(rand.NewSource(17))
	var R []string
	for i := 0; i < len(L); i += 3 {
		R = append(R, perturb(rng, L[i]))
	}
	res, err := JoinTables(L, R, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Program) == 0 {
		t.Fatal("no program learned")
	}
	prog := res.ToProgram()
	data, err := prog.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeProgram(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Configurations) != len(res.Program) {
		t.Fatalf("round trip lost configurations: %d vs %d",
			len(back.Configurations), len(res.Program))
	}
	if len(back.NegativeRules) != res.NegativeRules.Len() {
		t.Fatalf("round trip lost rules: %d vs %d",
			len(back.NegativeRules), res.NegativeRules.Len())
	}
}

func TestProgramApplyMatchesLearnedJoins(t *testing.T) {
	L := makeReference()
	rng := rand.New(rand.NewSource(19))
	var R []string
	for i := 0; i < len(L); i += 4 {
		R = append(R, perturb(rng, L[i]))
	}
	res, err := JoinTables(L, R, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	joins, err := res.ToProgram().Apply(L, R)
	if err != nil {
		t.Fatal(err)
	}
	// Applying the learned program to the same tables must reproduce the
	// learned mapping almost exactly (conflict resolution differs: apply
	// uses threshold-normalized distance instead of precision estimates).
	learned := res.Mapping()
	applied := map[int]int{}
	for _, j := range joins {
		applied[j.Right] = j.Left
	}
	if len(applied) == 0 {
		t.Fatal("applied program produced no joins")
	}
	agree := 0
	for r, l := range applied {
		if learned[r] == l {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(applied)); frac < 0.9 {
		t.Errorf("only %.2f of applied joins agree with learned joins", frac)
	}
	// Every learned join should be re-producible by the program.
	if len(applied) < len(learned)*9/10 {
		t.Errorf("applied %d joins, learned %d", len(applied), len(learned))
	}
}

func TestProgramApplyToFreshData(t *testing.T) {
	L := makeReference()
	rng := rand.New(rand.NewSource(23))
	var trainR, freshR []string
	var freshTruth []int
	for i := 0; i < len(L); i += 3 {
		trainR = append(trainR, perturb(rng, L[i]))
	}
	for i := 1; i < len(L); i += 5 {
		freshR = append(freshR, perturb(rng, L[i]))
		freshTruth = append(freshTruth, i)
	}
	res, err := JoinTables(L, trainR, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	joins, err := res.ToProgram().Apply(L, freshR)
	if err != nil {
		t.Fatal(err)
	}
	if len(joins) == 0 {
		t.Fatal("program joined nothing on fresh data")
	}
	correct := 0
	for _, j := range joins {
		if freshTruth[j.Right] == j.Left {
			correct++
		}
	}
	if prec := float64(correct) / float64(len(joins)); prec < 0.7 {
		t.Errorf("applied-program precision %.2f on fresh data", prec)
	}
}

func TestProgramApplyMultiColumn(t *testing.T) {
	leftCols, rightCols, truth := makeMovieTables(false)
	res, err := JoinMultiColumnTables(leftCols, rightCols, multiOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) == 0 {
		t.Fatal("no columns selected")
	}
	data, err := res.ToProgram().Encode()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := DecodeProgram(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Columns) != len(res.Columns) {
		t.Fatalf("columns lost in round trip: %v vs %v", prog.Columns, res.Columns)
	}
	joins, err := prog.ApplyMultiColumn(leftCols, rightCols)
	if err != nil {
		t.Fatal(err)
	}
	if len(joins) == 0 {
		t.Fatal("re-applied multi-column program joined nothing")
	}
	correct := 0
	for _, j := range joins {
		if truth[j.Right] == j.Left {
			correct++
		}
	}
	if prec := float64(correct) / float64(len(joins)); prec < 0.7 {
		t.Errorf("re-applied precision %.2f", prec)
	}
}

func TestApplyMultiColumnErrors(t *testing.T) {
	p := &Program{Version: 1}
	if _, err := p.ApplyMultiColumn([][]string{{"a"}}, [][]string{{"a"}}); err == nil {
		t.Error("program without weights accepted")
	}
	p.Columns = []int{5}
	p.Weights = []float64{1}
	if _, err := p.ApplyMultiColumn([][]string{{"a"}}, [][]string{{"a"}}); err == nil {
		t.Error("out-of-range column accepted")
	}
}

func TestDecodeProgramErrors(t *testing.T) {
	if _, err := DecodeProgram([]byte("{")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := DecodeProgram([]byte(`{"version":2}`)); err == nil {
		t.Error("unknown version accepted")
	}
	bad := []byte(`{"version":1,"configurations":[{"preprocess":"L","distance":"NOPE","threshold":0.2}]}`)
	if _, err := DecodeProgram(bad); err == nil {
		t.Error("unknown distance accepted")
	}
	bad = []byte(`{"version":1,"configurations":[{"preprocess":"L","distance":"ED","threshold":7}]}`)
	if _, err := DecodeProgram(bad); err == nil {
		t.Error("out-of-range threshold accepted")
	}
	bad = []byte(`{"version":1,"configurations":[{"preprocess":"L","distance":"JD","tokenization":"??","token_weights":"EW","threshold":0.2}]}`)
	if _, err := DecodeProgram(bad); err == nil {
		t.Error("unknown tokenization accepted")
	}
}

func TestParallelismIsDeterministic(t *testing.T) {
	L := makeReference()
	rng := rand.New(rand.NewSource(29))
	var R []string
	for i := 0; i < len(L); i += 4 {
		R = append(R, perturb(rng, L[i]))
	}
	seq := testOptions()
	seq.Parallelism = 1
	par := testOptions()
	par.Parallelism = 8
	a, err := JoinTables(L, R, seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := JoinTables(L, R, par)
	if err != nil {
		t.Fatal(err)
	}
	if a.ProgramString() != b.ProgramString() {
		t.Errorf("programs differ:\n seq: %s\n par: %s", a.ProgramString(), b.ProgramString())
	}
	am, bm := a.Mapping(), b.Mapping()
	if len(am) != len(bm) {
		t.Fatalf("join counts differ: %d vs %d", len(am), len(bm))
	}
	for r, l := range am {
		if bm[r] != l {
			t.Fatalf("join for right %d differs: %d vs %d", r, l, bm[r])
		}
	}
}
