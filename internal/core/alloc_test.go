package core

import (
	"context"
	"testing"
)

// TestMatchZeroAllocSteadyState pins the tentpole invariant: once the
// query-normalization cache holds a surface form, Match, MatchBatchInto,
// and MatchRowsInto run without a single heap allocation (sequential
// path; parallel fan-out pays O(workers) goroutine bookkeeping and is
// exercised by the benchmarks instead). A regression here is a silent
// performance cliff long before it is a correctness bug, so it fails the
// ordinary test suite, not just the benchgate.
func TestMatchZeroAllocSteadyState(t *testing.T) {
	ctx := context.Background()
	prog := tableTestProgram()
	L := makeReference()
	queries := oracleQueries(L)[:24]

	m, err := prog.Compile(L, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]Match, len(queries))
	// Warm pass: fills the cache and every ball-count slot the queries
	// can reach, and sizes the pooled scratch.
	if err := m.MatchBatchInto(ctx, queries, out); err != nil {
		t.Fatal(err)
	}

	if n := testing.AllocsPerRun(50, func() {
		for _, q := range queries {
			if _, _, err := m.Match(ctx, q); err != nil {
				t.Fatal(err)
			}
		}
	}); n != 0 {
		t.Errorf("warm Match: %.1f allocs per %d queries, want 0", n, len(queries))
	}
	if n := testing.AllocsPerRun(50, func() {
		if err := m.MatchBatchInto(ctx, queries, out); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("warm MatchBatchInto: %.1f allocs per batch, want 0", n)
	}

	t.Run("multi-column", func(t *testing.T) {
		leftCols, rightCols, _ := makeMovieTables(false)
		res, err := JoinMultiColumnTables(leftCols, rightCols, multiOptions())
		if err != nil {
			t.Fatal(err)
		}
		mm, err := res.ToProgram().CompileMultiColumn(leftCols, Options{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		rows := make([][]string, len(rightCols[0]))
		for i := range rows {
			row := make([]string, len(rightCols))
			for j := range rightCols {
				row[j] = rightCols[j][i]
			}
			rows[i] = row
		}
		rows = rows[:16]
		rout := make([]Match, len(rows))
		if err := mm.MatchRowsInto(ctx, rows, rout); err != nil {
			t.Fatal(err)
		}
		if n := testing.AllocsPerRun(50, func() {
			if err := mm.MatchRowsInto(ctx, rows, rout); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Errorf("warm multi-column MatchRowsInto: %.1f allocs per batch, want 0", n)
		}
	})

	t.Run("table", func(t *testing.T) {
		tab, err := prog.NewTable(1, toRows(L), Options{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		// Mutate once so the cache refills at a post-mutation generation —
		// the steady state a served table actually sits in.
		if _, err := tab.Add(toRows([]string{"2013 rice owls football team"})); err != nil {
			t.Fatal(err)
		}
		for _, q := range queries {
			if _, _, err := tab.Match(ctx, q); err != nil {
				t.Fatal(err)
			}
		}
		if n := testing.AllocsPerRun(50, func() {
			for _, q := range queries {
				if _, _, err := tab.Match(ctx, q); err != nil {
					t.Fatal(err)
				}
			}
		}); n != 0 {
			t.Errorf("warm Table.Match: %.1f allocs per %d queries, want 0", n, len(queries))
		}
	})
}
