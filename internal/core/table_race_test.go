package core

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestTableCompactionUnderTraffic hammers one table with concurrent
// queries, adds, removes, and forced compactions, and checks EVERY answer
// bit-identically against a full Compile of the table state that answered
// it. Run under -race this is the mutable-table concurrency contract.
//
// Verification keys off the generation MatchBatchAt reports: a single
// mutator records the live rows after each mutation, and since compaction
// never changes rows, the answering state is the latest recorded snapshot
// at or below the answered generation.
func TestTableCompactionUnderTraffic(t *testing.T) {
	L, R := makeTask(t, 59, 2)
	prog := tableTestProgram()
	queries := toRows(R[:10])

	tab, err := prog.NewTable(1, toRows(L[:100]), Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}

	// Generation-indexed row snapshots, maintained only by the mutator.
	type snapshot struct {
		gen  uint64
		rows [][]string
	}
	var mu sync.Mutex
	snaps := []snapshot{{gen: tab.Generation(), rows: tab.Rows()}}
	oracles := make(map[uint64][]Match) // answering gen -> oracle answers

	// oracleFor resolves the snapshot answering generation g, compiling
	// (and caching) the full-recompile oracle on first use.
	oracleFor := func(g uint64) []Match {
		mu.Lock()
		defer mu.Unlock()
		if want, ok := oracles[g]; ok {
			return want
		}
		rows := snaps[0].rows
		for _, s := range snaps {
			if s.gen > g {
				break
			}
			rows = s.rows
		}
		keys := make([]string, len(rows))
		for i, r := range rows {
			keys[i] = r[0]
		}
		m, err := prog.Compile(keys, Options{Parallelism: 1})
		if err != nil {
			t.Errorf("oracle compile: %v", err)
			return nil
		}
		want, err := m.MatchRows(context.Background(), queries)
		if err != nil {
			t.Errorf("oracle match: %v", err)
			return nil
		}
		oracles[g] = want
		return want
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	deadline := time.Now().Add(2 * time.Second)
	if testing.Short() {
		deadline = time.Now().Add(300 * time.Millisecond)
	}
	var wg sync.WaitGroup

	// One mutator: alternating adds and removes, recording each new state.
	// mu is held ACROSS the mutation: a query that observes the new
	// generation blocks in oracleFor until the matching snapshot exists,
	// so the generation -> rows mapping can never run ahead of the table.
	wg.Add(1)
	go func() {
		defer wg.Done()
		next := 100
		for i := 0; time.Now().Before(deadline); i++ {
			mu.Lock()
			var gen uint64
			var err error
			if i%3 == 2 && tab.Len() > 50 {
				gen, err = tab.Remove([]int{i % tab.Len()})
			} else {
				gen, err = tab.Add(toRows([]string{L[next%len(L)] + " rev"}))
				next++
			}
			if err != nil {
				mu.Unlock()
				t.Errorf("mutation: %v", err)
				return
			}
			snaps = append(snaps, snapshot{gen: gen, rows: tab.Rows()})
			mu.Unlock()
			time.Sleep(time.Millisecond)
		}
	}()

	// One compactor, forcing minor and major compactions mid-traffic.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(deadline) {
			if _, err := tab.Compact(ctx); err != nil && ctx.Err() == nil {
				t.Errorf("compact: %v", err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Query workers verifying every batch against the per-generation oracle.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				tb, err := tab.MatchBatchAt(ctx, queries)
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				want := oracleFor(tb.Generation)
				if want == nil {
					return
				}
				for i := range want {
					if tb.Matches[i] != want[i] {
						t.Errorf("generation %d, query %d: table %+v vs full compile %+v",
							tb.Generation, i, tb.Matches[i], want[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	// The table must still be coherent after the storm.
	if err := ctx.Err(); err != nil {
		t.Fatal(err)
	}
	tb, err := tab.MatchBatchAt(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	want := oracleFor(tb.Generation)
	for i := range want {
		if tb.Matches[i] != want[i] {
			t.Fatalf("post-storm query %d diverged", i)
		}
	}
}
