// Package embed provides deterministic dense string embeddings used by the
// GED ("embedding distance") join functions.
//
// The paper uses spaCy's en_core_web_lg GloVe vectors, which are not
// available offline. As documented in DESIGN.md, we substitute a
// feature-hashed character-trigram embedding: each padded trigram of the
// (pre-processed) string is hashed with FNV-1a into one of Dim buckets with
// a deterministic sign, the bucket counts are accumulated and the vector is
// L2-normalized. Like a word embedding, the result is a dense vector whose
// cosine distance is robust to token reordering and small edits, which is
// the role GED plays in the configuration space.
package embed

import (
	"math"
	"unicode/utf8"
)

// Dim is the dimensionality of the hashed embedding space.
const Dim = 64

// Vector is a dense embedding.
type Vector [Dim]float64

// FNV-1a parameters (hash/fnv's 64-bit variant, inlined so embedding a
// string allocates nothing: no hash object, no materialized gram slice).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvRune folds one rune's UTF-8 bytes into an FNV-1a state, matching
// what hash/fnv would compute over the encoded string.
func fnvRune(h uint64, r rune) uint64 {
	var buf [utf8.UTFMax]byte
	n := utf8.EncodeRune(buf[:], r)
	for _, b := range buf[:n] {
		h = (h ^ uint64(b)) * fnvPrime64
	}
	return h
}

// fnvString is FNV-1a over the raw bytes of s.
func fnvString(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

// addGram accumulates one padded trigram into the vector: the FNV-1a hash
// of the gram's UTF-8 bytes picks a bucket and a deterministic sign.
func (v *Vector) addGram(a, b, c rune) {
	sum := fnvRune(fnvRune(fnvRune(fnvOffset64, a), b), c)
	if (sum>>32)&1 == 1 {
		v[sum%Dim]--
	} else {
		v[sum%Dim]++
	}
}

// Embed maps s to its L2-normalized hashed-trigram embedding. Empty input
// yields the zero vector.
//
// The trigrams are the same '#'-padded rune windows tokenize.QGrams(s, 3)
// produces and each is hashed exactly as hash/fnv would hash the gram
// string, but the window slides over s directly — one rune decode per
// position, zero allocations — because Embed sits under Corpus.Profile on
// the per-query match path.
func Embed(s string) Vector {
	var v Vector
	if s == "" {
		return v
	}
	a, b := '#', '#'
	for _, r := range s {
		v.addGram(a, b, r)
		a, b = b, r
	}
	v.addGram(a, b, '#')
	v.addGram(b, '#', '#')
	var norm float64
	for _, x := range v {
		norm += x * x
	}
	if norm == 0 {
		// Degenerate (all signed counts cancelled): fall back to a one-hot
		// bucket so the vector is still unit-length and deterministic.
		v[fnvString(s)%Dim] = 1
		return v
	}
	norm = math.Sqrt(norm)
	for i := range v {
		v[i] /= norm
	}
	return v
}

// CosineDistance returns 1 - cosine similarity of a and b, clamped to
// [0, 1] (negative cosine similarity is treated as maximally distant).
// Zero vectors are maximally distant from everything except each other.
func CosineDistance(a, b Vector) float64 {
	var dot, na, nb float64
	for i := 0; i < Dim; i++ {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 && nb == 0 {
		return 0
	}
	if na == 0 || nb == 0 {
		return 1
	}
	d := 1 - dot/math.Sqrt(na*nb)
	if d < 0 {
		return 0
	}
	if d > 1 {
		return 1
	}
	return d
}

// CosineDistanceFlat is CosineDistance over Dim-length slices — the
// columnar arena stores every record's embedding contiguously in one
// flat block, and the stride-1 loop over the two slices performs the
// exact arithmetic of CosineDistance (same accumulation order), so the
// two are bit-identical.
//
//autofj:hotpath
func CosineDistanceFlat(a, b []float64) float64 {
	a = a[:Dim]
	b = b[:Dim]
	var dot, na, nb float64
	for i := 0; i < Dim; i++ {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 && nb == 0 {
		return 0
	}
	if na == 0 || nb == 0 {
		return 1
	}
	d := 1 - dot/math.Sqrt(na*nb)
	if d < 0 {
		return 0
	}
	if d > 1 {
		return 1
	}
	return d
}

// Distance embeds both strings and returns their cosine distance.
func Distance(a, b string) float64 {
	return CosineDistance(Embed(a), Embed(b))
}
