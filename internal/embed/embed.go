// Package embed provides deterministic dense string embeddings used by the
// GED ("embedding distance") join functions.
//
// The paper uses spaCy's en_core_web_lg GloVe vectors, which are not
// available offline. As documented in DESIGN.md, we substitute a
// feature-hashed character-trigram embedding: each padded trigram of the
// (pre-processed) string is hashed with FNV-1a into one of Dim buckets with
// a deterministic sign, the bucket counts are accumulated and the vector is
// L2-normalized. Like a word embedding, the result is a dense vector whose
// cosine distance is robust to token reordering and small edits, which is
// the role GED plays in the configuration space.
package embed

import (
	"hash/fnv"
	"math"

	"github.com/chu-data-lab/autofuzzyjoin-go/internal/tokenize"
)

// Dim is the dimensionality of the hashed embedding space.
const Dim = 64

// Vector is a dense embedding.
type Vector [Dim]float64

// Embed maps s to its L2-normalized hashed-trigram embedding. Empty input
// yields the zero vector.
func Embed(s string) Vector {
	var v Vector
	if s == "" {
		return v
	}
	for _, g := range tokenize.QGrams(s, 3) {
		h := fnv.New64a()
		h.Write([]byte(g))
		sum := h.Sum64()
		idx := int(sum % Dim)
		sign := 1.0
		if (sum>>32)&1 == 1 {
			sign = -1.0
		}
		v[idx] += sign
	}
	var norm float64
	for _, x := range v {
		norm += x * x
	}
	if norm == 0 {
		// Degenerate (all signed counts cancelled): fall back to a one-hot
		// bucket so the vector is still unit-length and deterministic.
		h := fnv.New64a()
		h.Write([]byte(s))
		v[int(h.Sum64()%Dim)] = 1
		return v
	}
	norm = math.Sqrt(norm)
	for i := range v {
		v[i] /= norm
	}
	return v
}

// CosineDistance returns 1 - cosine similarity of a and b, clamped to
// [0, 1] (negative cosine similarity is treated as maximally distant).
// Zero vectors are maximally distant from everything except each other.
func CosineDistance(a, b Vector) float64 {
	var dot, na, nb float64
	for i := 0; i < Dim; i++ {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 && nb == 0 {
		return 0
	}
	if na == 0 || nb == 0 {
		return 1
	}
	d := 1 - dot/math.Sqrt(na*nb)
	if d < 0 {
		return 0
	}
	if d > 1 {
		return 1
	}
	return d
}

// Distance embeds both strings and returns their cosine distance.
func Distance(a, b string) float64 {
	return CosineDistance(Embed(a), Embed(b))
}
