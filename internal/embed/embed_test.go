package embed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEmbedDeterministic(t *testing.T) {
	a := Embed("wisconsin badgers football")
	b := Embed("wisconsin badgers football")
	if a != b {
		t.Error("Embed is not deterministic")
	}
}

func TestEmbedUnitNorm(t *testing.T) {
	f := func(s string) bool {
		v := Embed(s)
		if s == "" {
			return v == Vector{}
		}
		var n float64
		for _, x := range v {
			n += x * x
		}
		return math.Abs(n-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDistanceIdentityAndRange(t *testing.T) {
	f := func(a, b string) bool {
		d := Distance(a, b)
		if d < 0 || d > 1 || math.IsNaN(d) {
			return false
		}
		return Distance(a, a) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDistanceSymmetric(t *testing.T) {
	f := func(a, b string) bool {
		return math.Abs(Distance(a, b)-Distance(b, a)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSimilarStringsCloserThanUnrelated(t *testing.T) {
	base := "2008 wisconsin badgers football team"
	near := "2008 wisconsin badgers football season"
	far := "artificial satellite telemetry module"
	if Distance(base, near) >= Distance(base, far) {
		t.Errorf("embedding does not separate near (%f) from far (%f)",
			Distance(base, near), Distance(base, far))
	}
}

func TestTokenOrderRobustness(t *testing.T) {
	a := "badgers wisconsin football"
	b := "wisconsin badgers football"
	c := "elephant quantum syzygy"
	if Distance(a, b) >= Distance(a, c) {
		t.Errorf("reordered tokens (%f) should be closer than unrelated (%f)",
			Distance(a, b), Distance(a, c))
	}
}

func TestEmptyConventions(t *testing.T) {
	if Distance("", "") != 0 {
		t.Error("two empties should be distance 0")
	}
	if Distance("", "abc") != 1 {
		t.Error("empty vs non-empty should be distance 1")
	}
}
