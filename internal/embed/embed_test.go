package embed

import (
	"hash/fnv"
	"math"
	"testing"
	"testing/quick"

	"github.com/chu-data-lab/autofuzzyjoin-go/internal/tokenize"
)

func TestEmbedDeterministic(t *testing.T) {
	a := Embed("wisconsin badgers football")
	b := Embed("wisconsin badgers football")
	if a != b {
		t.Error("Embed is not deterministic")
	}
}

func TestEmbedUnitNorm(t *testing.T) {
	f := func(s string) bool {
		v := Embed(s)
		if s == "" {
			return v == Vector{}
		}
		var n float64
		for _, x := range v {
			n += x * x
		}
		return math.Abs(n-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDistanceIdentityAndRange(t *testing.T) {
	f := func(a, b string) bool {
		d := Distance(a, b)
		if d < 0 || d > 1 || math.IsNaN(d) {
			return false
		}
		return Distance(a, a) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDistanceSymmetric(t *testing.T) {
	f := func(a, b string) bool {
		return math.Abs(Distance(a, b)-Distance(b, a)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSimilarStringsCloserThanUnrelated(t *testing.T) {
	base := "2008 wisconsin badgers football team"
	near := "2008 wisconsin badgers football season"
	far := "artificial satellite telemetry module"
	if Distance(base, near) >= Distance(base, far) {
		t.Errorf("embedding does not separate near (%f) from far (%f)",
			Distance(base, near), Distance(base, far))
	}
}

func TestTokenOrderRobustness(t *testing.T) {
	a := "badgers wisconsin football"
	b := "wisconsin badgers football"
	c := "elephant quantum syzygy"
	if Distance(a, b) >= Distance(a, c) {
		t.Errorf("reordered tokens (%f) should be closer than unrelated (%f)",
			Distance(a, b), Distance(a, c))
	}
}

func TestEmptyConventions(t *testing.T) {
	if Distance("", "") != 0 {
		t.Error("two empties should be distance 0")
	}
	if Distance("", "abc") != 1 {
		t.Error("empty vs non-empty should be distance 1")
	}
}

// referenceEmbed is the pre-inlining implementation (hash/fnv over
// tokenize.QGrams grams); Embed must stay bit-identical to it.
func referenceEmbed(s string) Vector {
	var v Vector
	if s == "" {
		return v
	}
	for _, g := range tokenize.QGrams(s, 3) {
		h := fnv.New64a()
		h.Write([]byte(g))
		sum := h.Sum64()
		idx := int(sum % Dim)
		sign := 1.0
		if (sum>>32)&1 == 1 {
			sign = -1.0
		}
		v[idx] += sign
	}
	var norm float64
	for _, x := range v {
		norm += x * x
	}
	if norm == 0 {
		h := fnv.New64a()
		h.Write([]byte(s))
		v[int(h.Sum64()%Dim)] = 1
		return v
	}
	norm = math.Sqrt(norm)
	for i := range v {
		v[i] /= norm
	}
	return v
}

func TestEmbedMatchesReference(t *testing.T) {
	cases := []string{
		"a", "ab", "abc", "wisconsin badgers", "héllo wörld",
		"日本語テキスト", "x\xffy", "   ", "##", "madison",
	}
	for _, s := range cases {
		if got, want := Embed(s), referenceEmbed(s); got != want {
			t.Errorf("Embed(%q) diverged from the hash/fnv reference", s)
		}
	}
	f := func(s string) bool { return Embed(s) == referenceEmbed(s) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEmbedZeroAlloc(t *testing.T) {
	if n := testing.AllocsPerRun(200, func() {
		_ = Embed("wisconsin badgers football 1998")
	}); n != 0 {
		t.Errorf("Embed allocates %v times per call, want 0", n)
	}
}
