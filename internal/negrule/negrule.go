// Package negrule implements negative-rule learning (Algorithm 2 of the
// Auto-FuzzyJoin paper, §3.3).
//
// If two records of the reference table L differ by exactly one word on
// each side — e.g. "2008 LSU Tigers football team" vs "2008 LSU Tigers
// baseball team" — then, because L has few or no duplicates, the differing
// word pair ("football", "baseball") must distinguish different entities.
// Such a pair becomes a negative rule; any candidate (l, r) join pair whose
// word sets differ by exactly that pair is vetoed.
package negrule

import (
	"sort"
	"unicode"

	"github.com/chu-data-lab/autofuzzyjoin-go/internal/parallel"
	"github.com/chu-data-lab/autofuzzyjoin-go/internal/textproc"
)

// Rule is an unordered pair of words known to separate distinct entities.
type Rule struct {
	A, B string // A < B lexicographically
}

// NewRule builds the canonical (sorted) rule for a word pair.
func NewRule(a, b string) Rule {
	if a > b {
		a, b = b, a
	}
	return Rule{A: a, B: b}
}

// Set is a learned collection of negative rules.
type Set struct {
	rules map[Rule]bool
	// wordCache memoizes the pre-processed word set per raw record so that
	// Learn and Blocks do the Algorithm-2 pre-processing exactly once.
	wordCache map[string][]string
}

// NewSet returns an empty rule set.
func NewSet() *Set {
	return &Set{rules: make(map[Rule]bool), wordCache: make(map[string][]string)}
}

// Len returns the number of learned rules.
func (s *Set) Len() int { return len(s.rules) }

// Add inserts an already-learned rule verbatim (words must be in the
// post-processing form produced by learning, e.g. stemmed lower-case).
// Used when deserializing saved programs.
func (s *Set) Add(a, b string) { s.rules[NewRule(a, b)] = true }

// Rules returns the learned rules in sorted order (for display/tests).
func (s *Set) Rules() []Rule {
	out := make([]Rule, 0, len(s.rules))
	for r := range s.rules {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// words returns the distinct, sorted word set of a record after the
// Algorithm-2 pre-processing (lower-casing, stemming, punctuation removal).
func (s *Set) words(record string) []string {
	if w, ok := s.wordCache[record]; ok {
		return w
	}
	w := AppendWordSet(nil, record)
	s.wordCache[record] = w
	return w
}

// symDiff returns the two one-sided word-set differences W(a)\W(b) and
// W(b)\W(a) of sorted distinct word slices.
func symDiff(a, b []string) (onlyA, onlyB []string) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] < b[j]:
			onlyA = append(onlyA, a[i])
			i++
		default:
			onlyB = append(onlyB, b[j])
			j++
		}
	}
	onlyA = append(onlyA, a[i:]...)
	onlyB = append(onlyB, b[j:]...)
	return onlyA, onlyB
}

// LearnPair inspects one L–L record pair and records a negative rule when
// the two word sets differ by exactly one word each (Definition 3.1).
func (s *Set) LearnPair(l1, l2 string) {
	d1, d2 := symDiff(s.words(l1), s.words(l2))
	if len(d1) == 1 && len(d2) == 1 {
		s.rules[NewRule(d1[0], d2[0])] = true
	}
}

// Learn runs LearnPair over a list of candidate L–L pairs (the pairs that
// survive blocking, per Algorithm 1 line 2).
func (s *Set) Learn(pairs [][2]string) {
	for _, p := range pairs {
		s.LearnPair(p[0], p[1])
	}
}

// Blocks reports whether the (l, r) pair is vetoed: their word sets differ
// by exactly one word on each side and that word pair is a learned rule.
func (s *Set) Blocks(l, r string) bool {
	if len(s.rules) == 0 {
		return false
	}
	d1, d2 := symDiff(s.words(l), s.words(r))
	if len(d1) != 1 || len(d2) != 1 {
		return false
	}
	return s.rules[NewRule(d1[0], d2[0])]
}

// AppendWordSet appends the sorted distinct word set of record under the
// Algorithm-2 pre-processing to dst and returns it — the pure,
// scratch-friendly form of the per-record computation Set caches. dst
// should be empty (typically a reused buffer sliced to length zero).
//
//autofj:hotpath
func AppendWordSet(dst []string, record string) []string {
	//autofj:alloc-ok the pre-processing transform allocates once per record at add/freeze time and the word set is cached thereafter
	dst = appendWords(dst, textproc.LowerStemRemovePunct.Apply(record))
	sort.Strings(dst)
	out := dst[:0]
	for i, f := range dst {
		if i == 0 || dst[i-1] != f {
			out = append(out, f)
		}
	}
	return out
}

// appendWords appends the whitespace-separated words of s to dst; each
// word is a substring sharing s's memory, so splitting itself does not
// allocate (unlike strings.Fields, which builds a fresh slice per call).
//
//autofj:hotpath
func appendWords(dst []string, s string) []string {
	start := -1
	for i, r := range s {
		if unicode.IsSpace(r) {
			if start >= 0 {
				dst = append(dst, s[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		dst = append(dst, s[start:])
	}
	return dst
}

// Frozen is an immutable, goroutine-safe view of a rule set bound to a
// fixed reference table: reference-side word sets are precomputed once,
// query-side word sets are supplied by the caller (via AppendWordSet),
// and lookups share no mutable state — unlike Set, whose word cache makes
// it unsafe for concurrent use.
type Frozen struct {
	rules     map[Rule]bool
	leftWords [][]string
}

// Freeze snapshots the rule set against a reference table, precomputing
// each record's word set across up to parallelism goroutines (0 means
// GOMAXPROCS). The returned Frozen is independent of later Set mutations.
func (s *Set) Freeze(left []string, parallelism int) *Frozen {
	f := &Frozen{
		rules:     make(map[Rule]bool, len(s.rules)),
		leftWords: make([][]string, len(left)),
	}
	//autofj:nondet-ok map-to-map copy; the frozen set is identical under any iteration order
	for r := range s.rules {
		f.rules[r] = true
	}
	parallel.Shard(len(left), parallel.Workers(parallelism, len(left)), func(_, start, end int) {
		for i := start; i < end; i++ {
			f.leftWords[i] = AppendWordSet(nil, left[i])
		}
	})
	return f
}

// FreezeRules builds a Frozen view of learned rule word pairs without
// binding it to a reference table: callers supply BOTH word sets per lookup
// via BlocksPair. Mutable reference tables use this form, precomputing each
// record's word set alongside the record itself so rows can come and go.
func FreezeRules(rules [][2]string) *Frozen {
	f := &Frozen{rules: make(map[Rule]bool, len(rules))}
	for _, pair := range rules {
		f.rules[NewRule(pair[0], pair[1])] = true
	}
	return f
}

// Len returns the number of frozen rules.
func (f *Frozen) Len() int { return len(f.rules) }

// Blocks reports whether the pair (reference record i, query with word set
// qwords) is vetoed. qwords must come from AppendWordSet. Allocation-free
// and safe for concurrent use.
func (f *Frozen) Blocks(i int, qwords []string) bool {
	return f.BlocksPair(f.leftWords[i], qwords)
}

// BlocksPair reports whether a (reference, query) pair with the given word
// sets is vetoed: the sets differ by exactly one word on each side and that
// word pair is a learned rule. Both slices must come from AppendWordSet.
// Allocation-free and safe for concurrent use.
//
//autofj:hotpath
func (f *Frozen) BlocksPair(lwords, qwords []string) bool {
	if len(f.rules) == 0 {
		return false
	}
	a, b := lwords, qwords
	var onlyA, onlyB string
	nA, nB := 0, 0
	ai, bi := 0, 0
	for ai < len(a) && bi < len(b) {
		switch {
		case a[ai] == b[bi]:
			ai++
			bi++
		case a[ai] < b[bi]:
			onlyA = a[ai]
			ai++
			if nA++; nA > 1 {
				return false
			}
		default:
			onlyB = b[bi]
			bi++
			if nB++; nB > 1 {
				return false
			}
		}
	}
	if nA += len(a) - ai; nA > 1 {
		return false
	}
	if ai < len(a) {
		onlyA = a[len(a)-1]
	}
	if nB += len(b) - bi; nB > 1 {
		return false
	}
	if bi < len(b) {
		onlyB = b[len(b)-1]
	}
	if nA != 1 || nB != 1 {
		return false
	}
	return f.rules[NewRule(onlyA, onlyB)]
}
