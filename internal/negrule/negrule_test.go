package negrule

import "testing"

func TestLearnsPaperExamples(t *testing.T) {
	s := NewSet()
	s.Learn([][2]string{
		{"2008 LSU Tigers baseball team", "2008 LSU Tigers football team"},
		{"2007 Wisconsin Badgers football team", "2008 Wisconsin Badgers football team"},
	})
	if s.Len() != 2 {
		t.Fatalf("learned %d rules, want 2: %v", s.Len(), s.Rules())
	}
	// The learned rules must veto the corresponding L-R false positives.
	if !s.Blocks("2007 LSU Tigers football team", "2007 LSU Tigers baseball team") {
		t.Error("football/baseball rule did not block")
	}
	if !s.Blocks("2007 Wisconsin Badgers football team", "2008 Wisconsin Badgers football team") {
		t.Error("2007/2008 rule did not block")
	}
	// But must not block pairs that differ differently.
	if s.Blocks("2008 LSU Tigers football team", "2008 LSU Tigers football") {
		t.Error("blocked a pair with a one-sided diff")
	}
	if s.Blocks("2008 LSU Tigers football team", "2008 LSU Tigers football squad") {
		t.Error("blocked a pair whose diff is not a learned rule")
	}
}

func TestNoRuleWhenDiffLargerThanOne(t *testing.T) {
	s := NewSet()
	s.LearnPair("alpha beta gamma", "alpha delta epsilon")
	if s.Len() != 0 {
		t.Errorf("learned %v from a 2-word diff", s.Rules())
	}
}

func TestNoRuleFromIdenticalWordSets(t *testing.T) {
	s := NewSet()
	s.LearnPair("alpha beta", "beta alpha")
	if s.Len() != 0 {
		t.Errorf("learned %v from identical word sets", s.Rules())
	}
}

func TestRuleIsUnordered(t *testing.T) {
	s := NewSet()
	s.LearnPair("x football", "x baseball")
	if !s.Blocks("y baseball", "y football") {
		t.Error("rule should apply in both directions")
	}
}

func TestPreprocessingAppliesStemmingAndPunct(t *testing.T) {
	s := NewSet()
	// "Teams" stems to "team" on both sides; diff is football vs baseball.
	s.LearnPair("LSU Football Teams!", "LSU Baseball Teams")
	if s.Len() != 1 {
		t.Fatalf("learned %d rules, want 1: %v", s.Len(), s.Rules())
	}
	if !s.Blocks("lsu football team", "lsu baseball team") {
		t.Error("stemmed rule did not block stemmed variant")
	}
}

func TestEmptySetBlocksNothing(t *testing.T) {
	s := NewSet()
	if s.Blocks("a b", "a c") {
		t.Error("empty set blocked a pair")
	}
}

func TestNewRuleCanonical(t *testing.T) {
	if NewRule("b", "a") != (Rule{A: "a", B: "b"}) {
		t.Error("NewRule not canonical")
	}
}

func TestRulesSortedAndAdd(t *testing.T) {
	s := NewSet()
	s.Add("zulu", "alpha")
	s.Add("mike", "bravo")
	s.Add("alpha", "bravo")
	rules := s.Rules()
	if len(rules) != 3 {
		t.Fatalf("len = %d", len(rules))
	}
	for i := 1; i < len(rules); i++ {
		prev, cur := rules[i-1], rules[i]
		if prev.A > cur.A || (prev.A == cur.A && prev.B > cur.B) {
			t.Fatalf("rules not sorted: %v", rules)
		}
	}
	if !s.Blocks("x zulu", "x alpha") {
		t.Error("Added rule does not block")
	}
}

func TestSymDiff(t *testing.T) {
	a := []string{"a", "b", "c"}
	b := []string{"b", "c", "d", "e"}
	d1, d2 := symDiff(a, b)
	if len(d1) != 1 || d1[0] != "a" {
		t.Errorf("d1 = %v", d1)
	}
	if len(d2) != 2 || d2[0] != "d" || d2[1] != "e" {
		t.Errorf("d2 = %v", d2)
	}
}
